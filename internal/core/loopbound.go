package core

import "vrsim/internal/isa"

// Loop-bound-aware vectorization: an extension beyond the ISCA 2021 design.
//
// The paper's evaluation acknowledges that Vector Runahead over-fetches
// when inner loops are short (bfs on the UR input "evicts useful data from
// the cache and wastes DRAM bandwidth"), because vectorization always spawns
// VectorLength future iterations regardless of how many the loop has left.
// The follow-on work fixes this with a run-time Discovery Mode; this module
// implements the lightweight static version that our kernels' common shape
// admits: when the striding load indexes through a register that a backward
// loop branch compares against a loop-invariant bound, lanes beyond the
// remaining trip count are masked off at vectorization time.
//
// Enabled with VRConfig.LoopBoundAware; off by default to stay faithful to
// the paper's mechanism. The A6 ablation quantifies its effect.

// loopBound describes an inferred loop-control comparison.
type loopBound struct {
	op    isa.Op  // the backward branch's comparison
	bound uint64  // loop-invariant bound value
	induc isa.Reg // the induction register (the striding load's index)
	found bool
}

// inferLoopBound statically scans from the striding load for the loop's
// backward branch and extracts the (induction register, bound) comparison,
// provided the branch tests the striding load's index register directly
// against a register whose scalar value is valid in the walker context.
func (v *VR) inferLoopBound(strideIn isa.Instr) loopBound {
	induc := strideIn.Src2
	if induc == 0 {
		return loopBound{} // no index register: no inference
	}
	pc := v.stridePC + 1
	hist := v.w.hist
	for steps := uint64(0); steps < v.cfg.MaxChainInstrs; steps++ {
		in := v.w.prog.At(pc)
		if in.IsHalt() {
			break
		}
		// Note: updates to the induction register before the branch (the
		// common i++ shape) keep comparing the same register, so the scan
		// continues through them.
		if in.IsCondBranch() && in.Target <= v.stridePC {
			// The backward branch. Accept the canonical shape — the
			// induction register as the first operand (or either operand
			// for the symmetric Beq/Bne) against a valid scalar bound.
			var boundReg isa.Reg
			switch {
			case in.Src1 == induc:
				boundReg = in.Src2
			case in.Src2 == induc && (in.Op == isa.Beq || in.Op == isa.Bne):
				boundReg = in.Src1
			default:
				return loopBound{}
			}
			if !v.w.valid[boundReg] {
				return loopBound{}
			}
			return loopBound{op: in.Op, bound: v.w.regs[boundReg], induc: induc, found: true}
		}
		if in.IsBranch() {
			var taken bool
			if in.Op == isa.Jmp {
				taken = true
			} else {
				taken = v.w.pred.Predict(pc, hist)
				hist <<= 1
				if taken {
					hist |= 1
				}
			}
			if taken {
				pc = in.Target
			} else {
				pc++
			}
			continue
		}
		pc++
	}
	return loopBound{}
}

// maskBeyondBound masks lanes whose induction value would already have
// exited the loop. Lane i's induction value is the walker's current index
// plus (i+1) index steps, mirroring the lane addresses.
//
//vrlint:allow inlinecost -- cost 143: per-activation lane masking, not per-cycle; revisit in the cycle-core overhaul
func (v *VR) maskBeyondBound(lb loopBound, strideIn isa.Instr) {
	if !lb.found || !v.w.valid[lb.induc] {
		return
	}
	idxStep := v.strideStep >> strideIn.Scale
	if idxStep == 0 {
		return
	}
	cur := v.w.regs[lb.induc]
	for i := 0; i < v.cfg.VectorLength; i++ {
		if !v.mask[i] {
			continue
		}
		lane := uint64(int64(cur) + int64(i+1)*idxStep)
		// Taken on the backward branch means the loop continues; lanes
		// whose induction value fails the test lie past the loop's end.
		if !isa.BranchTaken(isa.Instr{Op: lb.op}, lane, lb.bound) {
			v.mask[i] = false
			v.Stats.LanesBoundMasked++
		}
	}
}
