package core

import (
	"vrsim/internal/cpu"
	"vrsim/internal/isa"
	"vrsim/internal/mem"
)

// ClassicRA models original runahead execution (Dundas & Mudge ICS'97,
// Mutlu et al. HPCA'03): on a window stall with an off-chip load at the
// head, the core checkpoints, pre-executes the future stream under the INV
// discipline for exactly the blocking load's latency, then *flushes the
// pipeline* and refetches from the checkpoint. The flush is the cost PRE
// later removed: runahead-mode work is thrown away and the window refills
// from empty, which this engine models by holding commit for a refill
// penalty after each interval.
//
// ClassicRA exists as a lineage baseline beyond the paper's evaluated set
// (the paper compares against PRE, which dominates it); the A7 ablation
// quantifies the flush cost the PRE paper reports.
type ClassicRA struct {
	cfg RAConfig

	active     bool
	blDone     uint64
	holdUntil  uint64
	w          walker
	skipBudget uint64

	Stats RAStats
}

// RAConfig tunes classic runahead.
type RAConfig struct {
	// FlushPenaltyCycles is the pipeline drain-and-refill cost paid at
	// every runahead exit (front-end depth plus window refill).
	FlushPenaltyCycles uint64
	// MaxInstrsPerActivation bounds one interval's pre-execution.
	MaxInstrsPerActivation uint64
	// MinInterval is the minimum remaining blocking-load latency worth
	// entering runahead for.
	MinInterval uint64
}

// DefaultRAConfig returns a Table 1-proportioned configuration: the flush
// penalty approximates front-end refill plus window ramp (15 front-end
// stages + 350/5 dispatch cycles).
func DefaultRAConfig() RAConfig {
	return RAConfig{
		FlushPenaltyCycles:     85,
		MaxInstrsPerActivation: 4096,
		MinInterval:            96,
	}
}

// RAStats counts classic-runahead activity.
type RAStats struct {
	Activations uint64
	Instrs      uint64
	LoadsIssued uint64
	FlushCycles uint64 // commit-hold cycles paid to pipeline flushes
}

// NewClassicRA returns a classic runahead engine.
func NewClassicRA(cfg RAConfig) *ClassicRA { return &ClassicRA{cfg: cfg} }

// Active reports whether a runahead interval is in progress.
func (p *ClassicRA) Active() bool { return p.active }

// HoldCommit implements cpu.Engine: the post-interval pipeline flush.
func (p *ClassicRA) HoldCommit() bool {
	hold := p.Holding()
	if hold {
		p.Stats.FlushCycles++
	}
	return hold
}

// Holding reports the flush commit hold without the stats side effect
// HoldCommit carries — the side-effect-free predicate the runtime
// invariant checker queries at every retirement.
func (p *ClassicRA) Holding() bool { return !p.active && p.holdUntil > 0 }

// EngineIdle implements cpu.EngineIdler: idle when no interval is active,
// no post-interval flush is pending (Tick clearing holdUntil is a state
// change the core must not skip), and the blocking load returns inside
// MinInterval so the activation trigger cannot fire anywhere in the window.
func (p *ClassicRA) EngineIdle(now, blDone uint64) bool {
	return !p.active && p.holdUntil == 0 && blDone < now+p.cfg.MinInterval
}

// Tick implements cpu.Engine.
func (p *ClassicRA) Tick(c *cpu.Core) {
	now := c.Cycle()
	if p.holdUntil > 0 && now >= p.holdUntil {
		p.holdUntil = 0
	}
	if !p.active {
		if p.holdUntil > 0 {
			return // still flushing
		}
		bl, ok := c.BlockedLoadAtHead()
		if !ok || !bl.Full || bl.Done < now+p.cfg.MinInterval {
			return
		}
		p.w = newWalker(c)
		p.blDone = bl.Done
		p.active = true
		p.Stats.Activations++
	}
	if now >= p.blDone {
		// Interval over: leave runahead and pay the flush.
		p.active = false
		p.holdUntil = now + p.cfg.FlushPenaltyCycles
		return
	}
	for budget := c.SpareIssueSlots(); budget > 0 && p.active; budget-- {
		p.step(c, now)
	}
}

func (p *ClassicRA) step(c *cpu.Core, now uint64) {
	in := p.w.fetch()
	p.w.steps++
	p.Stats.Instrs++
	if p.w.steps > p.cfg.MaxInstrsPerActivation || in.IsHalt() {
		p.active = false
		p.holdUntil = now + p.cfg.FlushPenaltyCycles
		return
	}
	switch {
	case in.IsBranch():
		p.w.branchStep(in)
	case in.IsLoad():
		a, b, ok := p.w.srcOK(in)
		if !ok {
			p.w.valid[in.Dst] = false
			p.w.pc++
			return
		}
		addr := isa.EffAddr(in, a, b)
		res := c.Hier().Access(now, p.w.pc, addr, false, mem.ClassRunahead, mem.SrcRunahead)
		p.Stats.LoadsIssued++
		if res.Level == mem.AtL1 {
			p.w.regs[in.Dst] = c.Data().Load(addr)
			p.w.valid[in.Dst] = true
		} else {
			p.w.valid[in.Dst] = false
		}
		p.w.pc++
	case in.IsStore():
		if a, b, ok := p.w.srcOK(in); ok {
			c.Hier().Access(now, p.w.pc, isa.EffAddr(in, a, b), false, mem.ClassRunahead, mem.SrcRunahead)
		}
		p.w.pc++
	default:
		p.w.aluStep(in)
	}
}
