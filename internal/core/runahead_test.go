package core

import (
	"testing"

	"vrsim/internal/cpu"
)

func TestClassicRAActivatesAndPrefetches(t *testing.T) {
	k := buildHashChain(2, 2000, 21)
	ra := NewClassicRA(DefaultRAConfig())
	c := runWith(t, k, func(c *cpu.Core) { c.AttachEngine(ra) })
	if ra.Stats.Activations == 0 {
		t.Fatal("classic RA never activated")
	}
	if ra.Stats.LoadsIssued == 0 {
		t.Fatal("classic RA issued no loads")
	}
	if ra.Stats.FlushCycles == 0 {
		t.Error("no flush cost recorded")
	}
	if c.Stats.CommitStall[cpu.StallHeld] == 0 {
		t.Error("core never held commit for the flush")
	}
}

func TestClassicRADoesNotCorruptState(t *testing.T) {
	k := buildHashChain(2, 2000, 21)
	base := runWith(t, k, nil)
	ra := NewClassicRA(DefaultRAConfig())
	raC := runWith(t, k, func(c *cpu.Core) { c.AttachEngine(ra) })
	if base.ArchRegs()[6] != raC.ArchRegs()[6] {
		t.Fatal("classic RA corrupted results")
	}
	if base.Stats.Committed != raC.Stats.Committed {
		t.Fatal("instruction counts differ")
	}
}

func TestRunaheadLineageOrdering(t *testing.T) {
	// PRE removed classic runahead's flush: on the same kernel, PRE must
	// not lose to classic RA.
	mk := func() hashChainKernel { return buildHashChain(2, 3000, 21) }
	base := runWith(t, mk(), nil)
	ra := NewClassicRA(DefaultRAConfig())
	raC := runWith(t, mk(), func(c *cpu.Core) { c.AttachEngine(ra) })
	pre := NewPRE(DefaultPREConfig())
	preC := runWith(t, mk(), func(c *cpu.Core) { c.AttachEngine(pre) })

	raS := float64(base.Stats.Cycles) / float64(raC.Stats.Cycles)
	preS := float64(base.Stats.Cycles) / float64(preC.Stats.Cycles)
	t.Logf("classic %.3f, pre %.3f", raS, preS)
	if preS < raS-0.02 {
		t.Errorf("PRE (%.3f) lost to flush-based runahead (%.3f)", preS, raS)
	}
}

func TestFlushPenaltyScalesCost(t *testing.T) {
	mk := func() hashChainKernel { return buildHashChain(2, 2000, 21) }
	cheap := DefaultRAConfig()
	cheap.FlushPenaltyCycles = 1
	raCheap := NewClassicRA(cheap)
	cCheap := runWith(t, mk(), func(c *cpu.Core) { c.AttachEngine(raCheap) })

	dear := DefaultRAConfig()
	dear.FlushPenaltyCycles = 400
	raDear := NewClassicRA(dear)
	cDear := runWith(t, mk(), func(c *cpu.Core) { c.AttachEngine(raDear) })

	if cDear.Stats.Cycles <= cCheap.Stats.Cycles {
		t.Errorf("400-cycle flush (%d cycles) not slower than 1-cycle (%d)",
			cDear.Stats.Cycles, cCheap.Stats.Cycles)
	}
}
