package core

import (
	"vrsim/internal/cpu"
	"vrsim/internal/isa"
	"vrsim/internal/mem"
	"vrsim/internal/prefetch"
)

// VRConfig tunes the Vector Runahead engine.
type VRConfig struct {
	// VectorLength is the number of scalar-equivalent lanes — how many
	// future loop iterations one speculative vectorization covers.
	VectorLength int
	// LaneWidth is the number of 64-bit lanes per vector micro-op
	// (8 for AVX-512); a vector operation over VectorLength lanes costs
	// ceil(VectorLength/LaneWidth) issue slots.
	LaneWidth int
	// MaxChainInstrs bounds one vectorized chain (the paper uses a
	// 200-instruction timeout for chains that escape the loop).
	MaxChainInstrs uint64
	// MaxInstrsPerActivation bounds a whole runahead activation.
	MaxInstrsPerActivation uint64
	// DelayedTermination keeps runahead alive (stalling commit) until the
	// current vectorized chain has issued all its gathers, even after the
	// blocking load returns — the paper's delayed termination. Disabling
	// it is the F13 companion ablation.
	DelayedTermination bool
	// MaxHoldCycles bounds how long delayed termination may stall commit
	// past the blocking load's return before the chain is abandoned — the
	// cycle-domain analogue of the paper's chain-instruction timeout.
	MaxHoldCycles uint64
	// MinInterval is the minimum remaining latency of the blocking load
	// for runahead to be worth entering; runahead proposals trigger on
	// off-chip misses, not loads about to return from L2/L3.
	MinInterval uint64
	// StrideEntries sizes the striding-load detector (RPT).
	StrideEntries int
	// LoopBoundAware enables the loop-bound extension (loopbound.go):
	// lanes past the inner loop's remaining trip count are masked at
	// vectorization time instead of prefetching beyond the loop. Off by
	// default — the ISCA 2021 design has no bound analysis (its UR-input
	// over-fetch is a documented behaviour this reproduction preserves).
	LoopBoundAware bool
	// Reconverge enables the divergence-stack extension (reconverge.go):
	// lanes taking the other side of a data-dependent branch are stashed
	// and later run their own path, instead of being invalidated. Off by
	// default — plain VR masks divergent lanes.
	Reconverge bool
}

// DefaultVRConfig returns the paper's VR configuration: 64 scalar-equivalent
// lanes issued as 8-wide vector uops, delayed termination on.
func DefaultVRConfig() VRConfig {
	return VRConfig{
		VectorLength:           64,
		LaneWidth:              8,
		MaxChainInstrs:         200,
		MaxInstrsPerActivation: 4096,
		DelayedTermination:     true,
		MaxHoldCycles:          32,
		MinInterval:            96,
		StrideEntries:          32,
	}
}

// VRStats counts Vector Runahead activity.
type VRStats struct {
	Activations      uint64
	ChainsVectorized uint64 // vectorization episodes (incl. re-rounds)
	GatherLoads      uint64 // scalar-equivalent loads issued from gathers
	VectorUops       uint64 // vector micro-ops issued
	ScalarInstrs     uint64 // scalar instructions pre-executed
	ScalarLoads      uint64 // scalar runahead loads issued
	LanesMasked      uint64 // lanes invalidated by divergence or INV
	LanesBoundMasked uint64 // lanes masked by the loop-bound extension
	LanesStashed     uint64 // divergent lanes stashed for later execution
	LanesResumed     uint64 // stashed lanes resumed on their own path
	DelayedCycles    uint64 // cycles commit was held by delayed termination
}

// VR is the Vector Runahead engine (Naithani et al., ISCA 2021). On a
// full-ROB stall with a load miss at the head it pre-executes the predicted
// future stream like PRE — until it reaches a load its Reference Prediction
// Table knows to be striding. It then speculatively vectorizes: the
// striding load is replaced by VectorLength future copies (a gather of
// lanes lastAddr + k*stride), its destination register is tainted, and
// every subsequent instruction with a tainted source executes as a vector
// across all active lanes, issuing dependent gathers that put VectorLength
// independent misses in flight per chain level. Branch outcomes follow lane
// 0; diverging lanes are masked off (invalidated), as in the paper. When a
// chain completes (control returns to the striding load) and the blocking
// load is still outstanding, the next VectorLength iterations are
// vectorized; if the blocking load has returned, delayed termination holds
// commit until the chain's gathers finish issuing.
type VR struct {
	cfg VRConfig

	strides *prefetch.StrideTable

	active bool
	blDone uint64
	w      walker
	now    uint64

	// Vectorized-chain state. The per-register tables are regSpace-sized
	// (full uint8 index space) so Reg-typed indexing is provably in
	// bounds; only the first isa.NumRegs entries carry lane arrays.
	vec          bool
	taint        [regSpace]bool
	vregs        [regSpace][]uint64
	vvalid       [regSpace][]bool
	mask         []bool
	stridePC     int
	strideBase   uint64 // address of lane 0 for the *next* round
	strideStep   int64
	chainInstrs  uint64
	finalLoadPC  int  // last load of the dependence chain (the FLR)
	boundLimited bool // the loop-bound extension masked lanes this chain
	// coveredPC/coveredUntil remember the highest lane address a
	// bound-limited chain issued for a striding load, so the walker does
	// not redundantly re-vectorize a loop invocation it already covered.
	coveredPC    int
	coveredUntil uint64
	// diverge stashes lane groups that took the other branch direction
	// (the Reconverge extension). Its backing array and per-entry masks
	// are preallocated at construction and reused across episodes.
	diverge []divergePoint

	// laneAddrs and otherMask are per-step lane scratch, owned exclusively
	// by the step that is currently executing: laneAddrs carries gather
	// addresses from computation to issue, otherMask collects a branch's
	// divergent minority before it is stashed or discarded. Neither is
	// read across steps, so one buffer of each serves every episode.
	laneAddrs []uint64
	otherMask []bool

	waitUntil  uint64 // gather data in flight: no steps before this
	uopBacklog int    // issue slots owed from wide vector ops

	Stats VRStats
}

// NewVR returns a Vector Runahead engine. All per-lane scratch — the
// active mask, the vector register file, gather address and divergence
// buffers — is allocated here once and reused for the engine's lifetime;
// no steady-state path allocates.
func NewVR(cfg VRConfig) *VR {
	v := &VR{
		cfg:       cfg,
		strides:   prefetch.NewStrideTable(cfg.StrideEntries),
		mask:      make([]bool, cfg.VectorLength),
		laneAddrs: make([]uint64, cfg.VectorLength),
		otherMask: make([]bool, cfg.VectorLength),
		diverge:   make([]divergePoint, 0, maxDivergeStack),
	}
	for r := 0; r < isa.NumRegs; r++ {
		v.vregs[r] = make([]uint64, cfg.VectorLength)
		v.vvalid[r] = make([]bool, cfg.VectorLength)
	}
	for i := 0; i < maxDivergeStack; i++ {
		v.diverge = append(v.diverge, divergePoint{mask: make([]bool, cfg.VectorLength)})
	}
	v.diverge = v.diverge[:0]
	return v
}

// Bind attaches the engine to a core: it becomes the core's runahead engine
// and trains its stride detector on the main thread's issued loads (the
// paper's stride detector snoops the dispatch/execute stages).
func (v *VR) Bind(c *cpu.Core) {
	c.AttachEngine(v)
	//vrlint:allow observe -- LoadObserver here is the stride detector's training tap, simulator machinery by design, not a validation observer; it must write prefetcher state
	c.LoadObserver = func(pc int, addr uint64) { v.strides.Observe(pc, addr) }
}

// Active reports whether a runahead activation is in progress.
func (v *VR) Active() bool { return v.active }

// HoldCommit implements cpu.Engine: delayed termination.
func (v *VR) HoldCommit() bool {
	hold := v.Holding()
	if hold {
		v.Stats.DelayedCycles++
	}
	return hold
}

// Holding reports the delayed-termination commit hold without the stats
// side effect HoldCommit carries — the side-effect-free predicate the
// runtime invariant checker queries at every retirement to assert that no
// instruction commits architecturally while the engine demands a hold.
func (v *VR) Holding() bool {
	return v.cfg.DelayedTermination && v.active && v.vec && v.now >= v.blDone
}

// EngineIdle implements cpu.EngineIdler: with no activation in progress,
// every Tick over a stall window whose blocking load returns inside
// MinInterval is the activation check falling through — the trigger
// condition bl.Done >= t+MinInterval only gets harder as t grows, so the
// whole window is provably inert and the core may skip it.
func (v *VR) EngineIdle(now, blDone uint64) bool {
	return !v.active && blDone < now+v.cfg.MinInterval
}

// Tick implements cpu.Engine.
func (v *VR) Tick(c *cpu.Core) {
	v.now = c.Cycle()
	if !v.active {
		bl, ok := c.BlockedLoadAtHead()
		if !ok || !bl.Full || bl.Done < v.now+v.cfg.MinInterval {
			return
		}
		v.w = newWalker(c)
		v.blDone = bl.Done
		v.active = true
		v.vec = false
		v.uopBacklog = 0
		v.waitUntil = 0
		v.Stats.Activations++
	}

	// Outside a vectorized chain, the interval ends when the blocking load
	// returns (as in PRE). Inside one, delayed termination lets the chain
	// finish first — up to the hold bound, past which the chain is
	// abandoned rather than stalling commit indefinitely.
	if v.now >= v.blDone {
		if !v.vec || !v.cfg.DelayedTermination {
			v.deactivate()
			return
		}
		if v.now >= v.blDone+v.cfg.MaxHoldCycles {
			v.deactivate()
			return
		}
	}

	budget := c.SpareIssueSlots()
	if v.uopBacklog > 0 {
		use := budget
		if use > v.uopBacklog {
			use = v.uopBacklog
		}
		v.uopBacklog -= use
		budget -= use
	}
	for budget > 0 && v.active && (!v.vec || v.now >= v.waitUntil) && v.uopBacklog == 0 {
		cost := v.step(c)
		budget -= cost
		if budget < 0 {
			v.uopBacklog = -budget
			budget = 0
		}
	}
}

func (v *VR) deactivate() {
	v.active = false
	v.vec = false
	v.diverge = v.diverge[:0]
	// The pooled vector registers keep their (stale) lane values; taint is
	// the access guard — laneVal never reads a register whose taint is
	// clear, and re-tainting always writes every lane first.
	for r := range v.taint {
		v.taint[r] = false
	}
}

// endChain leaves vectorized mode; runahead itself ends if the blocking
// load already returned. The walker does not wait for the final gather's
// data — the paper's delayed termination only covers *generating* the
// chain's memory accesses. Under the Reconverge extension, stashed
// divergent lane groups run their paths to completion first.
//
//vrlint:allow inlinecost -- cost 140: chain teardown runs once per vector chain, not per cycle
func (v *VR) endChain() {
	if v.resumeDivergent() {
		return // still in vectorized mode, on the stashed group's path
	}
	v.vec = false
	v.waitUntil = 0
	for r := range v.taint {
		v.taint[r] = false
	}
	if v.now >= v.blDone {
		v.deactivate()
	}
}

// step pre-executes one instruction and returns its issue-slot cost.
func (v *VR) step(c *cpu.Core) int {
	in := v.w.fetch()
	v.w.steps++
	if v.w.steps > v.cfg.MaxInstrsPerActivation || in.IsHalt() {
		v.deactivate()
		return 1
	}
	if v.vec {
		v.chainInstrs++
		if v.chainInstrs > v.cfg.MaxChainInstrs {
			v.endChain()
			return 1
		}
		// Control returning to the striding load means the chain is
		// complete for these lanes; either re-vectorize the next
		// VectorLength iterations or finish. Bound-limited chains
		// re-derive the lane base from the walker's (scalar-updated)
		// induction state rather than skipping a full VectorLength ahead,
		// so successive invocations of a short inner loop each get their
		// own correctly-masked wave.
		if v.w.pc == v.stridePC {
			wasBound := v.boundLimited
			v.endChain()
			if !v.active {
				return 1
			}
			if wasBound {
				if a, b, okSrc := v.w.srcOK(in); okSrc {
					v.strideBase = isa.EffAddr(in, a, b)
				}
				if v.alreadyCovered(v.strideBase) {
					// This invocation's remaining lanes are in flight;
					// walk it in scalar mode until fresh territory.
					v.scalarStep(c, in)
					return 1
				}
			}
			return v.vectorize(c, in)
		}
		if v.anyTaintedSource(in) {
			return v.vecStep(c, in)
		}
		// Scalar instruction inside the chain: a scalar write to a
		// tainted register un-taints it (the WAW rule in §4.2.1 of the
		// follow-on's description of the VRAT).
		if in.WritesDst() {
			v.taint[in.Dst] = false
		}
		v.scalarStep(c, in)
		return 1
	}

	// Scalar pre-execution; a confident striding load starts vectorization.
	if in.IsLoad() {
		if e, ok := v.strides.Lookup(v.w.pc); ok && e.Confident() {
			v.stridePC = v.w.pc
			v.strideStep = e.Stride
			if a, b, okSrc := v.w.srcOK(in); okSrc {
				v.strideBase = isa.EffAddr(in, a, b)
			} else {
				v.strideBase = e.LastAddr
			}
			if !v.alreadyCovered(v.strideBase) {
				return v.vectorize(c, in)
			}
		}
	}
	v.scalarStep(c, in)
	return 1
}

// alreadyCovered reports whether a bound-limited chain already issued
// gathers at and beyond base for the current striding load (positive
// strides only; the common ascending-loop case).
func (v *VR) alreadyCovered(base uint64) bool {
	return v.cfg.LoopBoundAware && v.coveredPC == v.stridePC &&
		v.strideStep > 0 && base+uint64(v.strideStep) <= v.coveredUntil
}

// scalarStep is the PRE-style scalar transient execution path.
func (v *VR) scalarStep(c *cpu.Core, in isa.Instr) {
	v.Stats.ScalarInstrs++
	switch {
	case in.IsBranch():
		v.w.branchStep(in)
	case in.IsLoad():
		a, b, ok := v.w.srcOK(in)
		if !ok {
			v.w.valid[in.Dst] = false
			v.w.pc++
			return
		}
		addr := isa.EffAddr(in, a, b)
		res := c.Hier().Access(v.now, v.w.pc, addr, false, mem.ClassRunahead, mem.SrcRunahead)
		v.Stats.ScalarLoads++
		if res.Level == mem.AtL1 {
			v.w.regs[in.Dst] = c.Data().Load(addr)
			v.w.valid[in.Dst] = true
		} else {
			v.w.valid[in.Dst] = false
		}
		v.w.pc++
	case in.IsStore():
		if a, b, ok := v.w.srcOK(in); ok {
			addr := isa.EffAddr(in, a, b)
			c.Hier().Access(v.now, v.w.pc, addr, false, mem.ClassRunahead, mem.SrcRunahead)
		}
		v.w.pc++
	default:
		v.w.aluStep(in)
	}
}

// vectorize begins a vectorized chain at the striding load `in` sitting at
// v.stridePC: lanes cover the next VectorLength iterations.
func (v *VR) vectorize(c *cpu.Core, in isa.Instr) int {
	vl := v.cfg.VectorLength
	v.vec = true
	v.chainInstrs = 0
	v.diverge = v.diverge[:0]
	v.Stats.ChainsVectorized++
	for r := range v.taint {
		v.taint[r] = false
	}
	// The clamps below never bind (mask and laneAddrs are VectorLength-
	// sized at construction); they let the compiler drop the per-lane
	// bounds checks.
	addrs, mask := v.laneAddrs, v.mask
	n := vl
	if n > len(addrs) {
		n = len(addrs)
	}
	if n > len(mask) {
		n = len(mask)
	}
	for i := 0; i < n; i++ {
		mask[i] = true
		addrs[i] = uint64(int64(v.strideBase) + int64(i+1)*v.strideStep)
	}
	v.boundLimited = false
	if v.cfg.LoopBoundAware {
		v.maskBeyondBound(v.inferLoopBound(in), in)
		var maxAddr uint64
		for i := 0; i < n; i++ {
			if !mask[i] {
				v.boundLimited = true
			} else if addrs[i] > maxAddr {
				maxAddr = addrs[i]
			}
		}
		if v.boundLimited && v.strideStep > 0 {
			v.coveredPC = v.stridePC
			v.coveredUntil = maxAddr
		}
	}
	// Next round starts where this one ends.
	v.strideBase = uint64(int64(v.strideBase) + int64(vl)*v.strideStep)

	v.finalLoadPC = v.discoverFinalLoad(in)
	cost := v.gather(c, in, addrs)
	v.taint[in.Dst] = true
	v.w.valid[in.Dst] = false // the scalar view of the register is gone
	if v.finalLoadPC == v.stridePC {
		// No dependent loads: nothing a gather wave can add beyond the
		// stride prefetcher; finish immediately.
		v.w.pc++
		v.endChain()
		return cost
	}
	v.w.pc++
	return cost
}

// discoverFinalLoad statically walks the predicted path from the striding
// load, propagating taint, to find the last load of the dependence chain —
// the equivalent of the follow-on paper's Final-Load Register, determined
// here at vectorization time. Runahead terminates the chain as soon as that
// load's gathers have issued.
func (v *VR) discoverFinalLoad(strideIn isa.Instr) int {
	var taint [regSpace]bool
	taint[strideIn.Dst] = true
	final := v.stridePC
	pc := v.stridePC + 1
	hist := v.w.hist
	for steps := uint64(0); steps < v.cfg.MaxChainInstrs; steps++ {
		in := v.w.prog.At(pc)
		if in.IsHalt() {
			break
		}
		if in.IsBranch() {
			var taken bool
			if in.Op == isa.Jmp {
				taken = true
			} else {
				taken = v.w.pred.Predict(pc, hist)
				hist <<= 1
				if taken {
					hist |= 1
				}
			}
			if taken {
				pc = in.Target
			} else {
				pc++
			}
			if pc == v.stridePC {
				break
			}
			continue
		}
		tainted := false
		var srcBuf [3]isa.Reg // stack scratch: Sources appends at most 3 regs
		for _, r := range in.Sources(srcBuf[:0]) {
			if taint[r] {
				tainted = true
			}
		}
		if in.IsLoad() {
			if tainted {
				final = pc
				taint[in.Dst] = true
			} else if in.WritesDst() {
				taint[in.Dst] = false
			}
		} else if in.WritesDst() {
			taint[in.Dst] = tainted
		}
		pc++
		if pc == v.stridePC {
			break
		}
	}
	return final
}

// gather issues one vector load wave: a hierarchy access per active lane,
// landing the per-lane values in vregs[in.Dst]. The walker stalls
// (waitUntil) until the slowest lane returns — the in-order vector
// subthread waits for its data, which is exactly what overlaps the lanes'
// misses.
//
// The destination's pooled lane arrays are overwritten in full: masked
// lanes are cleared, not skipped, preserving the fresh-slice semantics a
// later-resumed divergent lane group observes.
func (v *VR) gather(c *cpu.Core, in isa.Instr, addrs []uint64) int {
	vl := v.cfg.VectorLength
	vals := v.vregs[in.Dst]
	valid := v.vvalid[in.Dst]
	mask := v.mask
	// Dead clamps (every lane slice is VectorLength-sized): they prove the
	// per-lane indexing in bounds so the loop carries no checks.
	n := vl
	if n > len(mask) {
		n = len(mask)
	}
	if n > len(vals) {
		n = len(vals)
	}
	if n > len(valid) {
		n = len(valid)
	}
	if n > len(addrs) {
		n = len(addrs)
	}
	var maxDone uint64
	active := 0
	for i := 0; i < n; i++ {
		if !mask[i] {
			vals[i] = 0
			valid[i] = false
			continue
		}
		active++
		res := c.Hier().Access(v.now, v.w.pc, addrs[i], false, mem.ClassRunahead, mem.SrcRunahead)
		v.Stats.GatherLoads++
		if res.Done > maxDone {
			maxDone = res.Done
		}
		vals[i] = c.Data().Load(addrs[i])
		valid[i] = true
	}
	if maxDone > v.waitUntil {
		v.waitUntil = maxDone
	}
	cost := (active + v.cfg.LaneWidth - 1) / v.cfg.LaneWidth
	if cost < 1 {
		cost = 1
	}
	v.Stats.VectorUops += uint64(cost)
	return cost
}

// anyTaintedSource reports whether in reads a tainted (vectorized) register.
//
//vrlint:allow inlinecost -- cost 81: one over budget from the stack-scratch Sources idiom that keeps it allocation-free
func (v *VR) anyTaintedSource(in isa.Instr) bool {
	var srcBuf [3]isa.Reg // stack scratch: Sources appends at most 3 regs
	for _, r := range in.Sources(srcBuf[:0]) {
		if v.taint[r] {
			return true
		}
	}
	return false
}

// laneVal reads source register r for lane i, broadcasting scalars.
func (v *VR) laneVal(r isa.Reg, i int) (uint64, bool) {
	if v.taint[r] {
		vv, vr := v.vvalid[r], v.vregs[r]
		if uint(i) >= uint(len(vv)) || uint(i) >= uint(len(vr)) || !vv[i] {
			return 0, false
		}
		return vr[i], true
	}
	return v.w.regs[r], v.w.valid[r]
}

// vecStep executes one instruction across all active lanes.
func (v *VR) vecStep(c *cpu.Core, in isa.Instr) int {
	vl := v.cfg.VectorLength
	switch {
	case in.IsBranch():
		// Per-lane outcomes; lane 0 steers, divergent lanes are masked.
		// The clamps are dead (mask and otherMask are VectorLength-sized);
		// they prove the lane indexing in bounds.
		mask, other := v.mask, v.otherMask
		n := vl
		if n > len(mask) {
			n = len(mask)
		}
		if n > len(other) {
			n = len(other)
		}
		lane0 := -1
		for i := 0; i < n; i++ {
			if mask[i] {
				lane0 = i
				break
			}
		}
		if lane0 < 0 {
			v.endChain()
			return 1
		}
		a0, okA := v.laneVal(in.Src1, lane0)
		b0, okB := v.laneVal(in.Src2, lane0)
		var taken0 bool
		if okA && okB {
			taken0 = isa.BranchTaken(in, a0, b0)
		} else {
			taken0 = v.w.pred.Predict(v.w.pc, v.w.hist)
		}
		haveOther := false
		for i := lane0 + 1; i < n; i++ {
			if !mask[i] {
				continue
			}
			a, okA := v.laneVal(in.Src1, i)
			b, okB := v.laneVal(in.Src2, i)
			if !okA || !okB {
				mask[i] = false
				v.Stats.LanesMasked++
				continue
			}
			if isa.BranchTaken(in, a, b) != taken0 {
				mask[i] = false
				if v.cfg.Reconverge {
					if !haveOther {
						haveOther = true
						for j := range other {
							other[j] = false
						}
					}
					other[i] = true
				} else {
					v.Stats.LanesMasked++
				}
			}
		}
		if haveOther {
			// The divergent group resumes on the path lane 0 did not take.
			otherPC := in.Target
			if taken0 {
				otherPC = v.w.pc + 1
			}
			if !v.stashDivergent(otherPC, other) {
				v.Stats.LanesMasked += countTrue(other)
			}
		}
		v.w.hist <<= 1
		if taken0 {
			v.w.hist |= 1
			v.w.pc = in.Target
		} else {
			v.w.pc++
		}
		return 1

	case in.IsLoad():
		// Dead clamps (lane slices are VectorLength-sized) for check-free
		// lane indexing.
		addrs, mask := v.laneAddrs, v.mask
		n := vl
		if n > len(addrs) {
			n = len(addrs)
		}
		if n > len(mask) {
			n = len(mask)
		}
		for i := 0; i < n; i++ {
			if !mask[i] {
				continue
			}
			a, okA := v.laneVal(in.Src1, i)
			b, okB := v.laneVal(in.Src2, i)
			if !okA || !okB {
				mask[i] = false
				v.Stats.LanesMasked++
				continue
			}
			addrs[i] = isa.EffAddr(in, a, b)
		}
		cost := v.gather(c, in, addrs)
		v.taint[in.Dst] = true
		v.w.valid[in.Dst] = false
		if v.w.pc == v.finalLoadPC {
			// The chain's accesses have all been generated: terminate
			// without waiting for this gather's data.
			v.w.pc++
			v.endChain()
			return cost
		}
		v.w.pc++
		return cost

	case in.IsStore():
		// Prefetch per-lane store targets. The clamp is dead (mask is
		// VectorLength-sized); it makes the lane indexing check-free.
		mask := v.mask
		lanes := vl
		if lanes > len(mask) {
			lanes = len(mask)
		}
		n := 0
		for i := 0; i < lanes; i++ {
			if !mask[i] {
				continue
			}
			a, okA := v.laneVal(in.Src1, i)
			b, okB := v.laneVal(in.Src2, i)
			if okA && okB {
				c.Hier().Access(v.now, v.w.pc, isa.EffAddr(in, a, b), false, mem.ClassRunahead, mem.SrcRunahead)
				n++
			}
		}
		v.w.pc++
		cost := (n + v.cfg.LaneWidth - 1) / v.cfg.LaneWidth
		if cost < 1 {
			cost = 1
		}
		v.Stats.VectorUops += uint64(cost)
		return cost

	default:
		// Vector ALU across lanes, in place over the destination's pooled
		// lane arrays. Lane i reads only index i of its sources before
		// writing index i, so Dst aliasing Src1/Src2 is safe; masked and
		// invalid lanes are cleared, not skipped, preserving fresh-slice
		// semantics for later-resumed divergent groups.
		if in.WritesDst() {
			// Dead clamps (lane slices are VectorLength-sized) for
			// check-free lane indexing.
			vals := v.vregs[in.Dst]
			valid := v.vvalid[in.Dst]
			mask := v.mask
			n := vl
			if n > len(vals) {
				n = len(vals)
			}
			if n > len(valid) {
				n = len(valid)
			}
			if n > len(mask) {
				n = len(mask)
			}
			for i := 0; i < n; i++ {
				if !mask[i] {
					vals[i] = 0
					valid[i] = false
					continue
				}
				a, okA := v.laneVal(in.Src1, i)
				b, okB := v.laneVal(in.Src2, i)
				if okA && okB {
					vals[i] = isa.ALUResult(in, a, b)
					valid[i] = true
				} else {
					vals[i] = 0
					valid[i] = false
				}
			}
			v.taint[in.Dst] = true
			v.w.valid[in.Dst] = false
		}
		v.w.pc++
		cost := (vl + v.cfg.LaneWidth - 1) / v.cfg.LaneWidth
		v.Stats.VectorUops += uint64(cost)
		return cost
	}
}
