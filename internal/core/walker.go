// Package core implements the paper's contribution — Vector Runahead (VR)
// — together with the Precise Runahead (PRE) baseline it is evaluated
// against. Both are built as runahead engines attached to the out-of-order
// core (cpu.Engine): they observe the full-ROB-stall trigger, pre-execute
// the predicted future instruction stream in a transient register context,
// and issue loads into the shared memory hierarchy, where the prefetched
// lines (and the MSHR/DRAM contention they cause) are visible to the main
// thread.
//
// The engines follow the runahead literature's INV discipline: a
// pre-executed load produces a usable value only if it hits in the L1-D;
// otherwise its destination is poisoned and dependents are skipped. This
// single rule reproduces the paper's central observation — classic and
// precise runahead prefetch at most one level of an indirect chain, because
// the next level's address is poisoned. Vector Runahead escapes it by
// *waiting* for entire gather waves (VR's in-order vector subthread
// semantics), overlapping VectorLength independent misses per chain level
// instead of running past them.
package core

import (
	"vrsim/internal/branch"
	"vrsim/internal/cpu"
	"vrsim/internal/isa"
)

// regSpace sizes per-register arrays to the full uint8 index space of
// isa.Reg: indexing such an array with a Reg-typed value is provably in
// bounds, so the pre-execution hot paths carry no bounds checks. Only
// the first isa.NumRegs entries are ever populated — the ISA validates
// register operands at program build time.
const regSpace = 256

// walker is the transient pre-execution context shared by the runahead
// engines: an approximate scalar register file with INV bits, a program
// counter, and a local branch-history register for walking the predicted
// future path.
type walker struct {
	prog  *isa.Program
	pred  branch.Predictor
	regs  [regSpace]uint64
	valid [regSpace]bool
	pc    int
	hist  uint64
	steps uint64 // instructions walked this activation
}

// newWalker snapshots the core's approximate context into a fresh walker.
//
//vrlint:allow inlinecost -- cost 94: runs once per runahead activation; the context copy is the work
func newWalker(c *cpu.Core) walker {
	ctx, startPC := c.ApproxContext()
	w := walker{
		prog: c.Program(),
		pred: c.Predictor(),
		pc:   startPC,
		hist: c.GHR(),
	}
	copy(w.regs[:isa.NumRegs], ctx.Regs[:])
	copy(w.valid[:isa.NumRegs], ctx.Valid[:])
	return w
}

// fetch returns the instruction at the walker's PC.
func (w *walker) fetch() isa.Instr { return w.prog.At(w.pc) }

// srcOK reports whether both register sources needed by in are valid, and
// returns their values.
//
//vrlint:allow inlinecost -- cost 101: validity rules per operand class are one flat switch; splitting obscures them
func (w *walker) srcOK(in isa.Instr) (a, b uint64, ok bool) {
	a, b = w.regs[in.Src1], w.regs[in.Src2]
	ok = true
	var srcBuf [3]isa.Reg // stack scratch: Sources appends at most 3 regs
	for _, r := range in.Sources(srcBuf[:0]) {
		if !w.valid[r] {
			ok = false
		}
	}
	return a, b, ok
}

// branchStep follows a branch: the actual direction when operands are
// valid, the predicted direction otherwise. It advances pc and hist and
// returns the direction followed.
func (w *walker) branchStep(in isa.Instr) bool {
	var taken bool
	if in.Op == isa.Jmp {
		taken = true
	} else if a, b, ok := w.srcOK(in); ok {
		taken = isa.BranchTaken(in, a, b)
	} else {
		taken = w.pred.Predict(w.pc, w.hist)
	}
	if in.IsCondBranch() {
		w.hist <<= 1
		if taken {
			w.hist |= 1
		}
	}
	if taken {
		w.pc = in.Target
	} else {
		w.pc++
	}
	return taken
}

// aluStep executes a non-memory, non-branch instruction in the transient
// context, propagating INV, and advances pc.
func (w *walker) aluStep(in isa.Instr) {
	if in.WritesDst() {
		a, b, ok := w.srcOK(in)
		if ok {
			w.regs[in.Dst] = isa.ALUResult(in, a, b)
			w.valid[in.Dst] = true
		} else {
			w.valid[in.Dst] = false
		}
	}
	w.pc++
}
