package core

import (
	"testing"

	"vrsim/internal/cpu"
	"vrsim/internal/isa"
	"vrsim/internal/mem"
)

// divergentChainKernel loads a selector per iteration and follows one of
// two *different* indirect chains depending on it — the pattern where
// plain VR loses half its lanes at the branch.
func divergentChainKernel(iters int) hashChainKernel {
	const (
		rSel  isa.Reg = 1 // selector array
		rB    isa.Reg = 2 // path-0 table
		rC    isa.Reg = 3 // path-1 table
		rI    isa.Reg = 4
		rN    isa.Reg = 5
		rV    isa.Reg = 6
		rSum  isa.Reg = 7
		rMask isa.Reg = 8
		rT    isa.Reg = 9
	)
	tableSize := 1 << 21
	baseSel := uint64(0x0100_0000)
	baseB := uint64(0x1000_0000)
	baseC := uint64(0x3000_0000)
	b := isa.NewBuilder("divergent-chain")
	b.Li(rSel, int64(baseSel))
	b.Li(rB, int64(baseB))
	b.Li(rC, int64(baseC))
	b.Li(rI, 0)
	b.Li(rN, int64(iters))
	b.Li(rSum, 0)
	b.Li(rMask, int64(tableSize-1))
	b.Label("loop")
	b.Ld(rV, rSel, rI, 3, 0) // striding selector load
	// Hash-weight the iteration so the window covers few of them and the
	// stall trigger fires often (the regime runahead targets).
	for r := 0; r < 8; r++ {
		b.ShrI(rT, rV, 7)
		b.Xor(rV, rV, rT)
		b.ShlI(rT, rV, 5)
		b.Add(rV, rV, rT)
	}
	b.AndI(rT, rV, 1)
	b.ShrI(rV, rV, 1)
	b.And(rV, rV, rMask)
	b.Beq(rT, 0, "path0")
	b.Ld(rV, rC, rV, 3, 0) // path 1: C table
	b.Jmp("join")
	b.Label("path0")
	b.Ld(rV, rB, rV, 3, 0) // path 0: B table
	b.Label("join")
	b.Add(rSum, rSum, rV)
	b.AddI(rI, rI, 1)
	b.Blt(rI, rN, "loop")
	b.Halt()
	init := func(d *mem.Backing) {
		x := uint64(4242)
		next := func() uint64 {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			return x
		}
		for i := 0; i < iters; i++ {
			d.Store(baseSel+uint64(i)*8, next())
		}
		for i := 0; i < tableSize; i += 8 {
			d.Store(baseB+uint64(i)*8, uint64(i))
			d.Store(baseC+uint64(i)*8, uint64(i)*3)
		}
	}
	return hashChainKernel{prog: b.MustBuild(), init: init, iters: iters}
}

func TestReconvergeStashesAndResumes(t *testing.T) {
	cfg := DefaultVRConfig()
	cfg.Reconverge = true
	cfg.MaxHoldCycles = 4096 // let chains survive to the divergence point
	vr := NewVR(cfg)
	runWith(t, divergentChainKernel(3000), func(c *cpu.Core) { vr.Bind(c) })
	if vr.Stats.LanesStashed == 0 {
		t.Fatal("no lanes stashed on a 50/50 divergent kernel")
	}
	if vr.Stats.LanesResumed == 0 {
		t.Fatal("stashed lanes never resumed")
	}
	if vr.Stats.LanesResumed > vr.Stats.LanesStashed {
		t.Errorf("resumed %d > stashed %d", vr.Stats.LanesResumed, vr.Stats.LanesStashed)
	}
}

func TestReconvergeHelpsDivergentChains(t *testing.T) {
	mk := func() hashChainKernel { return divergentChainKernel(3000) }

	plainCfg := DefaultVRConfig()
	plainCfg.MaxHoldCycles = 4096
	plain := NewVR(plainCfg)
	cPlain := runWith(t, mk(), func(c *cpu.Core) { plain.Bind(c) })

	rcCfg := DefaultVRConfig()
	rcCfg.MaxHoldCycles = 4096
	rcCfg.Reconverge = true
	rec := NewVR(rcCfg)
	cRec := runWith(t, mk(), func(c *cpu.Core) { rec.Bind(c) })

	// Both transparent.
	if cPlain.ArchRegs()[7] != cRec.ArchRegs()[7] {
		t.Fatal("reconvergence corrupted results")
	}
	// Covering both paths instead of one must not lose performance on a
	// 50/50-divergent kernel — and deterministically it wins here.
	if cRec.Stats.Cycles > cPlain.Stats.Cycles {
		t.Errorf("reconverge slower: %d vs %d cycles", cRec.Stats.Cycles, cPlain.Stats.Cycles)
	}
	if rec.Stats.LanesResumed == 0 {
		t.Error("no lanes resumed")
	}
	t.Logf("plain: masked=%d gathers=%d cycles=%d", plain.Stats.LanesMasked, plain.Stats.GatherLoads, cPlain.Stats.Cycles)
	t.Logf("recon: stashed=%d resumed=%d gathers=%d cycles=%d", rec.Stats.LanesStashed, rec.Stats.LanesResumed, rec.Stats.GatherLoads, cRec.Stats.Cycles)
}

func TestReconvergeOffByDefault(t *testing.T) {
	vr := NewVR(DefaultVRConfig())
	runWith(t, divergentChainKernel(1500), func(c *cpu.Core) { vr.Bind(c) })
	if vr.Stats.LanesStashed != 0 || vr.Stats.LanesResumed != 0 {
		t.Error("divergence stack active without the flag")
	}
}

func TestDivergeStackDepthBounded(t *testing.T) {
	v := NewVR(VRConfig{VectorLength: 8, LaneWidth: 8, Reconverge: true})
	other := make([]bool, 8)
	other[1] = true
	for i := 0; i < maxDivergeStack; i++ {
		if !v.stashDivergent(10+i, other) {
			t.Fatalf("stash %d rejected below capacity", i)
		}
	}
	if v.stashDivergent(99, other) {
		t.Fatal("stash accepted beyond the 8-entry bound")
	}
	if len(v.diverge) != maxDivergeStack {
		t.Fatalf("stack depth = %d", len(v.diverge))
	}
}
