package core

import (
	"testing"

	"vrsim/internal/cpu"
	"vrsim/internal/isa"
	"vrsim/internal/mem"
)

func TestMinIntervalFiltersShortStalls(t *testing.T) {
	// With an absurdly high MinInterval, VR must never activate.
	k := buildHashChain(2, 1500, 21)
	cfg := DefaultVRConfig()
	cfg.MinInterval = 1 << 40
	vr := NewVR(cfg)
	runWith(t, k, func(c *cpu.Core) { vr.Bind(c) })
	if vr.Stats.Activations != 0 {
		t.Errorf("activations = %d with prohibitive MinInterval", vr.Stats.Activations)
	}
	// With zero, it activates at least as often as the default.
	cfg2 := DefaultVRConfig()
	cfg2.MinInterval = 0
	eager := NewVR(cfg2)
	runWith(t, buildHashChain(2, 1500, 21), func(c *cpu.Core) { eager.Bind(c) })
	def := NewVR(DefaultVRConfig())
	runWith(t, buildHashChain(2, 1500, 21), func(c *cpu.Core) { def.Bind(c) })
	if eager.Stats.Activations < def.Stats.Activations {
		t.Errorf("eager activations %d < default %d", eager.Stats.Activations, def.Stats.Activations)
	}
}

func TestMaxHoldCyclesBoundsDelay(t *testing.T) {
	mk := func() hashChainKernel { return buildHashChain(2, 1500, 21) }
	tight := DefaultVRConfig()
	tight.MaxHoldCycles = 16
	vrTight := NewVR(tight)
	cTight := runWith(t, mk(), func(c *cpu.Core) { vrTight.Bind(c) })

	loose := DefaultVRConfig()
	loose.MaxHoldCycles = 1 << 20
	vrLoose := NewVR(loose)
	cLoose := runWith(t, mk(), func(c *cpu.Core) { vrLoose.Bind(c) })

	tightFrac := float64(cTight.Stats.CommitStall[cpu.StallHeld]) / float64(cTight.Stats.Cycles)
	looseFrac := float64(cLoose.Stats.CommitStall[cpu.StallHeld]) / float64(cLoose.Stats.Cycles)
	if tightFrac >= looseFrac {
		t.Errorf("hold bound ineffective: tight %.3f >= loose %.3f", tightFrac, looseFrac)
	}
}

func TestDiscoverFinalLoadOnChain(t *testing.T) {
	// Assemble a chain and check the FLR scan finds its last load.
	b := isa.NewBuilder("flr")
	b.Li(1, 0x1000)
	b.Li(2, 0x2000)
	b.Li(3, 0)
	b.Li(4, 100)
	b.Label("loop")
	stridePC := b.PC()
	b.Ld(5, 1, 3, 3, 0) // striding
	b.AddI(5, 5, 1)
	b.Ld(6, 2, 5, 3, 0) // dependent level 1
	b.ShlI(6, 6, 1)
	lastLoadPC := b.PC()
	b.Ld(7, 2, 6, 3, 0) // dependent level 2 (the FLR)
	b.Add(8, 8, 7)
	b.Ld(9, 1, 3, 3, 8) // NOT dependent on the stride value
	b.AddI(3, 3, 1)
	b.Blt(3, 4, "loop")
	b.Halt()
	prog := b.MustBuild()

	vr := NewVR(DefaultVRConfig())
	vr.stridePC = stridePC
	vr.w = walker{prog: prog, pred: cpuPredictor(t)}
	got := vr.discoverFinalLoad(prog.At(stridePC))
	if got != lastLoadPC {
		t.Errorf("final load pc = %d, want %d", got, lastLoadPC)
	}
}

// cpuPredictor builds a predictor instance for walker-only tests.
func cpuPredictor(t *testing.T) interface {
	Predict(pc int, hist uint64) bool
	Update(pc int, hist uint64, taken bool)
	Name() string
} {
	t.Helper()
	return cpu.DefaultConfig().Predictor.New()
}

func TestNoVectorizationWithoutStrides(t *testing.T) {
	// A pure pointer chase has no striding load: VR activates on the
	// stalls but never finds a vectorization candidate, degenerating to
	// scalar runahead.
	const (
		rP isa.Reg = 1
		rI isa.Reg = 2
		rN isa.Reg = 3
	)
	n := 1 << 15
	base := uint64(0x1000000)
	b := isa.NewBuilder("chase")
	b.Li(rP, int64(base))
	b.Li(rI, 0)
	b.Li(rN, 4000)
	b.Label("loop")
	b.LdD(rP, rP, 0)
	b.AddI(rI, rI, 1)
	b.Blt(rI, rN, "loop")
	b.Halt()
	k := hashChainKernel{
		prog:  b.MustBuild(),
		iters: 4000,
		init: func(d *mem.Backing) {
			// A random cycle through n nodes spaced a page apart.
			x := uint64(31)
			cur := uint64(0)
			for i := 0; i < n; i++ {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				next := x % uint64(n)
				d.Store(base+cur*4096, base+next*4096)
				cur = next
			}
		},
	}
	vr := NewVR(DefaultVRConfig())
	runWith(t, k, func(c *cpu.Core) { vr.Bind(c) })
	if vr.Stats.Activations == 0 {
		t.Fatal("VR never activated on a chase")
	}
	if vr.Stats.ChainsVectorized != 0 {
		t.Errorf("vectorized %d chains without any striding load", vr.Stats.ChainsVectorized)
	}
	if vr.Stats.ScalarInstrs == 0 {
		t.Error("no scalar pre-execution recorded")
	}
}
