package core

// Divergence-stack execution: an extension beyond the ISCA 2021 design.
//
// Plain Vector Runahead follows the control flow of lane 0 and invalidates
// lanes that diverge — so every lane that takes the other side of a
// data-dependent branch stops prefetching for the rest of the chain. The
// follow-on work adds full SIMT reconvergence; this module implements the
// two-path core of that idea: when lanes diverge, the minority set is
// pushed (with its PC) onto a small stack instead of being discarded, and
// when the current lane group finishes its chain, the stashed groups run
// their own path to chain completion. Vector register state is per-lane
// already, so stashed lanes resume with correct values.
//
// Enabled with VRConfig.Reconverge; off by default for fidelity to the
// paper (whose lane masking under divergence this reproduction otherwise
// preserves). The A8 ablation quantifies it on divergent kernels.

// divergePoint is one stashed lane group awaiting execution.
type divergePoint struct {
	pc   int
	mask []bool
}

// maxDivergeStack mirrors the follow-on design's 8-entry reconvergence
// stack.
const maxDivergeStack = 8

// stashDivergent records the lanes that took the other branch direction.
// It returns true if they were stashed; false means the caller should fall
// back to masking them off (stack full or feature disabled). Stack entries
// and their masks are preallocated at construction (NewVR); pushing
// re-slices into that storage and copies the mask, allocating nothing.
func (v *VR) stashDivergent(pc int, other []bool) bool {
	if !v.cfg.Reconverge || len(v.diverge) >= maxDivergeStack {
		return false
	}
	n := len(v.diverge)
	v.diverge = v.diverge[:n+1]
	v.diverge[n].pc = pc
	copy(v.diverge[n].mask, other)
	v.Stats.LanesStashed += countTrue(other)
	return true
}

// resumeDivergent pops the next stashed lane group into the active mask
// and redirects the walker; it reports whether a group was resumed.
func (v *VR) resumeDivergent() bool {
	if len(v.diverge) == 0 {
		return false
	}
	dp := v.diverge[len(v.diverge)-1]
	v.diverge = v.diverge[:len(v.diverge)-1]
	copy(v.mask, dp.mask)
	v.w.pc = dp.pc
	v.Stats.LanesResumed += countTrue(dp.mask)
	return true
}

func countTrue(m []bool) uint64 {
	var n uint64
	for _, b := range m {
		if b {
			n++
		}
	}
	return n
}
