package core

import (
	"testing"

	"vrsim/internal/cpu"
	"vrsim/internal/isa"
	"vrsim/internal/mem"
)

// shortLoopKernel iterates an outer loop whose inner loop has exactly
// `innerTrip` iterations of a striding indirect access — the shape where
// plain VR vectorizes 64 lanes into an 8-iteration loop and over-fetches.
func shortLoopKernel(innerTrip, outerTrip int) hashChainKernel {
	const (
		rA    isa.Reg = 1 // inner data array
		rB    isa.Reg = 2 // indirect target
		rO    isa.Reg = 3 // outer index
		rNO   isa.Reg = 4 // outer bound
		rJ    isa.Reg = 5 // inner index
		rEnd  isa.Reg = 6 // inner bound
		rV    isa.Reg = 7
		rSum  isa.Reg = 8
		rMask isa.Reg = 9
	)
	tableSize := 1 << 21
	baseA := uint64(0x0100_0000)
	baseB := uint64(0x1000_0000)
	b := isa.NewBuilder("shortloop")
	b.Li(rA, int64(baseA))
	b.Li(rB, int64(baseB))
	b.Li(rO, 0)
	b.Li(rNO, int64(outerTrip))
	b.Li(rSum, 0)
	b.Li(rMask, int64(tableSize-1))
	b.Label("outer")
	// inner bounds: j = o*innerTrip .. (o+1)*innerTrip
	b.Li(rV, int64(innerTrip))
	b.Mul(rJ, rO, rV)
	b.Add(rEnd, rJ, rV)
	b.Label("inner")
	b.Ld(rV, rA, rJ, 3, 0) // striding inner load
	b.And(rV, rV, rMask)
	b.Ld(rV, rB, rV, 3, 0) // indirect
	b.Add(rSum, rSum, rV)
	b.AddI(rJ, rJ, 1)
	b.Blt(rJ, rEnd, "inner")
	b.AddI(rO, rO, 1)
	b.Blt(rO, rNO, "outer")
	b.Halt()
	init := func(d *mem.Backing) {
		s := uint64(909)
		for i := 0; i < innerTrip*outerTrip; i++ {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			d.Store(baseA+uint64(i)*8, s)
		}
	}
	return hashChainKernel{prog: b.MustBuild(), init: init, iters: innerTrip * outerTrip}
}

func TestLoopBoundMasksShortLoops(t *testing.T) {
	k := shortLoopKernel(8, 3000) // 8-trip inner loops, VL=64
	cfg := DefaultVRConfig()
	cfg.LoopBoundAware = true
	vr := NewVR(cfg)
	runWith(t, k, func(c *cpu.Core) { vr.Bind(c) })
	if vr.Stats.ChainsVectorized == 0 {
		t.Fatal("no vectorization on short-loop kernel")
	}
	if vr.Stats.LanesBoundMasked == 0 {
		t.Fatal("loop-bound extension never masked a lane")
	}
	// Most lanes of most chains should be masked (8 live of 64).
	perChain := float64(vr.Stats.LanesBoundMasked) / float64(vr.Stats.ChainsVectorized)
	if perChain < 16 {
		t.Errorf("bound-masked lanes per chain = %.1f, expected tens", perChain)
	}
}

func TestLoopBoundCutsRunaheadTraffic(t *testing.T) {
	mk := func() hashChainKernel { return shortLoopKernel(8, 3000) }
	plain := NewVR(DefaultVRConfig())
	cPlain := runWith(t, mk(), func(c *cpu.Core) { plain.Bind(c) })
	cfg := DefaultVRConfig()
	cfg.LoopBoundAware = true
	bounded := NewVR(cfg)
	cBounded := runWith(t, mk(), func(c *cpu.Core) { bounded.Bind(c) })

	if bounded.Stats.GatherLoads >= plain.Stats.GatherLoads {
		t.Errorf("bounded gathers %d >= plain %d", bounded.Stats.GatherLoads, plain.Stats.GatherLoads)
	}
	// Architectural results identical either way.
	if cPlain.ArchRegs()[8] != cBounded.ArchRegs()[8] {
		t.Fatal("loop-bound extension corrupted results")
	}
}

func TestLoopBoundOffByDefault(t *testing.T) {
	vr := NewVR(DefaultVRConfig())
	runWith(t, shortLoopKernel(8, 2000), func(c *cpu.Core) { vr.Bind(c) })
	if vr.Stats.LanesBoundMasked != 0 {
		t.Errorf("bound masking active without the flag: %d lanes", vr.Stats.LanesBoundMasked)
	}
}

func TestInferLoopBoundShapes(t *testing.T) {
	// Direct check of the static scan on a canonical loop.
	b := isa.NewBuilder("canon")
	b.Li(1, 0x1000)
	b.Li(2, 0)   // induction
	b.Li(3, 100) // bound
	b.Label("loop")
	stridePC := b.PC()
	b.Ld(4, 1, 2, 3, 0)
	b.AddI(2, 2, 1)
	b.Blt(2, 3, "loop")
	b.Halt()
	prog := b.MustBuild()

	vr := NewVR(DefaultVRConfig())
	vr.stridePC = stridePC
	vr.w = walker{prog: prog, pred: cpuPredictor(t)}
	vr.w.regs[3] = 100
	vr.w.valid[3] = true
	lb := vr.inferLoopBound(prog.At(stridePC))
	if !lb.found || lb.bound != 100 || lb.induc != 2 || lb.op != isa.Blt {
		t.Fatalf("inferred bound = %+v", lb)
	}
	// Invalid bound register: no inference.
	vr.w.valid[3] = false
	if lb := vr.inferLoopBound(prog.At(stridePC)); lb.found {
		t.Fatal("inferred a bound from an invalid register")
	}
}
