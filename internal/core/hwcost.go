package core

import "fmt"

// CostItem is one hardware structure's storage cost.
type CostItem struct {
	Name  string
	Bytes int
	Note  string
}

// HardwareCost itemizes the storage VR adds to the baseline core, in the
// style of the paper's hardware-overhead accounting (the follow-on paper
// reports 1139 bytes for its richer DVR structures; plain VR needs less).
// Vector values live in the existing 512-bit vector register file, so only
// control state is new.
func (v *VR) HardwareCost() []CostItem {
	vl := v.cfg.VectorLength
	items := []CostItem{
		{"stride detector (RPT)", v.strides.SizeBytes(),
			fmt.Sprintf("%d entries: 48b PC + 48b addr + 16b stride + 2b conf + 1b flag", v.cfg.StrideEntries)},
		{"taint vector", 4, "one bit per architectural integer register"},
		{"lane mask", (vl + 7) / 8, fmt.Sprintf("%d lanes", vl)},
		{"stride PC/base/step", 6 + 8 + 2, "48b PC, 64b base address, 16b stride"},
		{"chain/activation counters", 4, "chain timeout + activation budget"},
		{"runahead PC + history", 6 + 8, "48b PC, 64b local GHR"},
		{"interval register", 8, "blocking-load return cycle"},
	}
	return items
}

// TotalHardwareBytes sums the itemized cost.
func (v *VR) TotalHardwareBytes() int {
	total := 0
	for _, it := range v.HardwareCost() {
		total += it.Bytes
	}
	return total
}
