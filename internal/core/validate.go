package core

import (
	"errors"
	"fmt"
)

// ErrBadConfig is wrapped by every engine-configuration validation
// failure in this package.
var ErrBadConfig = errors.New("core: invalid engine configuration")

// Guard rails for fuzzed and externally supplied configurations: within
// these bounds the per-lane vector state the VR engine allocates stays
// small.
const (
	maxVectorLength  = 1 << 12
	maxLaneWidth     = 1 << 12
	maxStrideEntries = 1 << 20
)

func engineBound(name string, v, lo, hi int) error {
	if v < lo || v > hi {
		return fmt.Errorf("%w: %s %d out of range [%d,%d]", ErrBadConfig, name, v, lo, hi)
	}
	return nil
}

// Validate checks the Vector Runahead configuration, returning an error
// wrapping ErrBadConfig for the first problem found.
func (c VRConfig) Validate() error {
	if err := engineBound("VectorLength", c.VectorLength, 1, maxVectorLength); err != nil {
		return err
	}
	if err := engineBound("LaneWidth", c.LaneWidth, 1, maxLaneWidth); err != nil {
		return err
	}
	if err := engineBound("StrideEntries", c.StrideEntries, 1, maxStrideEntries); err != nil {
		return err
	}
	if c.MaxChainInstrs == 0 {
		return fmt.Errorf("%w: MaxChainInstrs must be positive", ErrBadConfig)
	}
	if c.MaxInstrsPerActivation == 0 {
		return fmt.Errorf("%w: MaxInstrsPerActivation must be positive", ErrBadConfig)
	}
	return nil
}

// Validate checks the Precise Runahead configuration.
func (c PREConfig) Validate() error {
	if c.MaxInstrsPerActivation == 0 {
		return fmt.Errorf("%w: MaxInstrsPerActivation must be positive", ErrBadConfig)
	}
	return nil
}

// Validate checks the classic-runahead configuration.
func (c RAConfig) Validate() error {
	if c.MaxInstrsPerActivation == 0 {
		return fmt.Errorf("%w: MaxInstrsPerActivation must be positive", ErrBadConfig)
	}
	return nil
}
