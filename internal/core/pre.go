package core

import (
	"vrsim/internal/cpu"
	"vrsim/internal/isa"
	"vrsim/internal/mem"
)

// PREConfig tunes the Precise Runahead engine.
type PREConfig struct {
	// MaxInstrsPerActivation bounds a single runahead interval's work, a
	// safety net mirroring hardware watchdogs.
	MaxInstrsPerActivation uint64
	// MinInterval is the minimum remaining latency of the blocking load
	// for runahead to be worth entering (PRE targets off-chip misses).
	MinInterval uint64
}

// DefaultPREConfig returns the configuration used in the evaluation.
func DefaultPREConfig() PREConfig {
	return PREConfig{MaxInstrsPerActivation: 4096, MinInterval: 96}
}

// PREStats counts Precise Runahead activity.
type PREStats struct {
	Activations   uint64
	Instrs        uint64 // instructions pre-executed
	LoadsIssued   uint64 // runahead loads sent to the hierarchy
	LoadsPoisoned uint64 // loads skipped for an INV address
	StoresTouched uint64 // store lines prefetched
}

// PRE models Precise Runahead Execution (Naithani et al., HPCA 2020), the
// state-of-the-art scalar runahead baseline: on a full-ROB stall with a
// load miss at the head, it pre-executes the future instruction stream at
// front-end speed — limited to the issue slots the stalled main thread
// leaves free — for exactly the runahead interval (until the blocking load
// returns), without flushing the pipeline on exit.
//
// Like all invalidation-based runahead, a pre-executed load yields a usable
// value only on an L1 hit; chains of dependent misses therefore prefetch
// only their first level.
type PRE struct {
	cfg PREConfig

	active bool
	blDone uint64
	w      walker

	Stats PREStats
}

// NewPRE returns a PRE engine; attach it with core.AttachEngine.
func NewPRE(cfg PREConfig) *PRE { return &PRE{cfg: cfg} }

// HoldCommit implements cpu.Engine: PRE never delays the pipeline.
func (p *PRE) HoldCommit() bool { return false }

// Holding is the side-effect-free commit-hold predicate the runtime
// invariant checker queries; PRE never holds commit.
func (p *PRE) Holding() bool { return false }

// EngineIdle implements cpu.EngineIdler: idle when no interval is active
// and the blocking load returns inside MinInterval, so the activation
// trigger (bl.Done >= t+MinInterval, monotonically harder as t grows)
// cannot fire anywhere in the window.
func (p *PRE) EngineIdle(now, blDone uint64) bool {
	return !p.active && blDone < now+p.cfg.MinInterval
}

// Active reports whether a runahead interval is in progress.
func (p *PRE) Active() bool { return p.active }

// Tick implements cpu.Engine.
func (p *PRE) Tick(c *cpu.Core) {
	now := c.Cycle()
	if !p.active {
		bl, ok := c.BlockedLoadAtHead()
		if !ok || !bl.Full || bl.Done < now+p.cfg.MinInterval {
			return
		}
		p.w = newWalker(c)
		p.blDone = bl.Done
		p.active = true
		p.Stats.Activations++
	}
	if now >= p.blDone {
		p.active = false
		return
	}
	// PRE's instruction supply is bound by the front-end width the stalled
	// main thread is not using.
	for budget := c.SpareIssueSlots(); budget > 0 && p.active; budget-- {
		p.step(c, now)
	}
}

func (p *PRE) step(c *cpu.Core, now uint64) {
	in := p.w.fetch()
	p.w.steps++
	p.Stats.Instrs++
	if p.w.steps > p.cfg.MaxInstrsPerActivation || in.IsHalt() {
		p.active = false
		return
	}
	switch {
	case in.IsBranch():
		p.w.branchStep(in)
	case in.IsLoad():
		a, b, ok := p.w.srcOK(in)
		if !ok {
			p.Stats.LoadsPoisoned++
			p.w.valid[in.Dst] = false
			p.w.pc++
			return
		}
		addr := isa.EffAddr(in, a, b)
		res := c.Hier().Access(now, p.w.pc, addr, false, mem.ClassRunahead, mem.SrcRunahead)
		p.Stats.LoadsIssued++
		if res.Level == mem.AtL1 {
			p.w.regs[in.Dst] = c.Data().Load(addr)
			p.w.valid[in.Dst] = true
		} else {
			p.w.valid[in.Dst] = false // INV: data not back in time
		}
		p.w.pc++
	case in.IsStore():
		// Prefetch the store target (no transient memory writes).
		if a, b, ok := p.w.srcOK(in); ok {
			addr := isa.EffAddr(in, a, b)
			c.Hier().Access(now, p.w.pc, addr, false, mem.ClassRunahead, mem.SrcRunahead)
			p.Stats.StoresTouched++
		}
		p.w.pc++
	default:
		p.w.aluStep(in)
	}
}
