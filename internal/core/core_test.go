package core

import (
	"testing"

	"vrsim/internal/cpu"
	"vrsim/internal/isa"
	"vrsim/internal/mem"
)

// hashChainKernel builds the paper's Figure-1 pattern:
//
//	for i := 0; i < n; i++ { sum += C[hash(B[hash(A[i])])] }
//
// with `levels` levels of indirection (1 = B only, 2 = B then C) and a
// cheap xor-shift "hash" of a few ALU ops between levels. Arrays are sized
// well beyond the LLC so the indirect loads miss.
type hashChainKernel struct {
	prog  *isa.Program
	init  func(d *mem.Backing)
	iters int
}

func buildHashChain(levels, iters, tableLog int) hashChainKernel {
	return buildHashChainRounds(levels, iters, tableLog, 8)
}

// buildHashChainRounds controls the hash cost: each round is 4 ALU ops, so
// rounds=8 yields ~35 instructions per indirection level — the
// instructions-per-iteration regime of the paper's workloads, where the
// reorder buffer spans only a handful of iterations and the baseline core
// extracts little natural MLP.
func buildHashChainRounds(levels, iters, tableLog, rounds int) hashChainKernel {
	const (
		rZero isa.Reg = 0
		rA    isa.Reg = 1
		rB    isa.Reg = 2
		rC    isa.Reg = 3
		rI    isa.Reg = 4
		rN    isa.Reg = 5
		rSum  isa.Reg = 6
		rV    isa.Reg = 7
		rT    isa.Reg = 8
		rMask isa.Reg = 9
	)
	tableSize := 1 << tableLog
	baseA := uint64(0x0100_0000)
	baseB := uint64(0x1000_0000)
	baseC := uint64(0x3000_0000)

	b := isa.NewBuilder("hashchain")
	b.Li(rZero, 0)
	b.Li(rA, int64(baseA))
	b.Li(rB, int64(baseB))
	b.Li(rC, int64(baseC))
	b.Li(rI, 0)
	b.Li(rN, int64(iters))
	b.Li(rSum, 0)
	b.Li(rMask, int64(tableSize-1))
	b.Label("loop")
	b.Ld(rV, rA, rI, 3, 0) // v = A[i]  (striding)
	for l := 0; l < levels; l++ {
		// xorshift-style hash, `rounds` rounds of 4 dependent ALU ops.
		for r := 0; r < rounds; r++ {
			b.ShrI(rT, rV, 7)
			b.Xor(rV, rV, rT)
			b.ShlI(rT, rV, 5)
			b.Add(rV, rV, rT)
		}
		b.And(rV, rV, rMask)
		if l == 0 {
			b.Ld(rV, rB, rV, 3, 0) // v = B[hash(v)]
		} else {
			b.Ld(rV, rC, rV, 3, 0) // v = C[hash(v)]
		}
	}
	b.Add(rSum, rSum, rV)
	b.AddI(rI, rI, 1)
	b.Blt(rI, rN, "loop")
	b.Halt()

	init := func(d *mem.Backing) {
		s := uint64(12345)
		for i := 0; i < iters; i++ {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			d.Store(baseA+uint64(i)*8, s%uint64(tableSize))
		}
		for i := 0; i < tableSize; i++ {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			d.Store(baseB+uint64(i)*8, s%uint64(tableSize))
			d.Store(baseC+uint64(i)*8, s%1000)
		}
	}
	return hashChainKernel{prog: b.MustBuild(), init: init, iters: iters}
}

// runWith executes the kernel on a fresh core with the given engine
// factory (nil = plain baseline) and returns the core.
func runWith(t *testing.T, k hashChainKernel, attach func(c *cpu.Core)) *cpu.Core {
	t.Helper()
	data := mem.NewBacking()
	k.init(data)
	h := mem.MustHierarchy(mem.DefaultConfig())
	h.Data = data
	c := cpu.New(cpu.DefaultConfig(), k.prog, data, h)
	if attach != nil {
		attach(c)
	}
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestVRActivatesAndVectorizes(t *testing.T) {
	k := buildHashChain(2, 3000, 21) // 2 levels, 16 MB tables
	vr := NewVR(DefaultVRConfig())
	c := runWith(t, k, func(c *cpu.Core) { vr.Bind(c) })
	if vr.Stats.Activations == 0 {
		t.Fatal("VR never activated")
	}
	if vr.Stats.ChainsVectorized == 0 {
		t.Fatal("VR never vectorized a chain")
	}
	if vr.Stats.GatherLoads < 64 {
		t.Errorf("gather loads = %d", vr.Stats.GatherLoads)
	}
	if c.Hier().Stats.RunaheadAccesses[mem.AtMem] == 0 {
		t.Error("no runahead off-chip accesses recorded")
	}
}

func TestVRSpeedsUpIndirectChains(t *testing.T) {
	k := buildHashChain(2, 3000, 21)
	base := runWith(t, k, nil)
	kv := buildHashChain(2, 3000, 21)
	vr := NewVR(DefaultVRConfig())
	fast := runWith(t, kv, func(c *cpu.Core) { vr.Bind(c) })

	// Architectural results must be identical: runahead is transparent.
	if base.ArchRegs()[6] != fast.ArchRegs()[6] {
		t.Fatalf("VR corrupted results: %d vs %d", base.ArchRegs()[6], fast.ArchRegs()[6])
	}
	speedup := float64(base.Stats.Cycles) / float64(fast.Stats.Cycles)
	t.Logf("VR speedup = %.2fx (base %d cycles, VR %d cycles)", speedup, base.Stats.Cycles, fast.Stats.Cycles)
	if speedup < 1.2 {
		t.Errorf("VR speedup = %.2f, want >= 1.2", speedup)
	}
}

func TestPREHelpsLessThanVROnDeepChains(t *testing.T) {
	mk := func() hashChainKernel { return buildHashChain(2, 3000, 21) }
	base := runWith(t, mk(), nil)
	pre := NewPRE(DefaultPREConfig())
	preC := runWith(t, mk(), func(c *cpu.Core) { c.AttachEngine(pre) })
	vr := NewVR(DefaultVRConfig())
	vrC := runWith(t, mk(), func(c *cpu.Core) { vr.Bind(c) })

	if pre.Stats.Activations == 0 {
		t.Fatal("PRE never activated")
	}
	preSpeed := float64(base.Stats.Cycles) / float64(preC.Stats.Cycles)
	vrSpeed := float64(base.Stats.Cycles) / float64(vrC.Stats.Cycles)
	t.Logf("PRE %.2fx, VR %.2fx", preSpeed, vrSpeed)
	if vrSpeed <= preSpeed {
		t.Errorf("VR (%.2fx) should beat PRE (%.2fx) on 2-level chains", vrSpeed, preSpeed)
	}
}

func TestVRIncreasesMLP(t *testing.T) {
	mk := func() hashChainKernel { return buildHashChain(2, 3000, 21) }
	base := runWith(t, mk(), nil)
	vr := NewVR(DefaultVRConfig())
	vrC := runWith(t, mk(), func(c *cpu.Core) { vr.Bind(c) })
	baseMLP := base.Hier().MSHR.AvgOccupancy(base.Stats.Cycles)
	vrMLP := vrC.Hier().MSHR.AvgOccupancy(vrC.Stats.Cycles)
	t.Logf("MLP base=%.2f vr=%.2f", baseMLP, vrMLP)
	if vrMLP <= baseMLP {
		t.Errorf("VR MLP (%.2f) should exceed baseline (%.2f)", vrMLP, baseMLP)
	}
}

func TestDelayedTerminationHoldsCommit(t *testing.T) {
	mk := func() hashChainKernel { return buildHashChain(2, 2000, 21) }
	on := NewVR(DefaultVRConfig())
	onC := runWith(t, mk(), func(c *cpu.Core) { on.Bind(c) })
	cfg := DefaultVRConfig()
	cfg.DelayedTermination = false
	off := NewVR(cfg)
	offC := runWith(t, mk(), func(c *cpu.Core) { off.Bind(c) })

	if on.Stats.DelayedCycles == 0 {
		t.Error("delayed termination never held commit")
	}
	if onC.Stats.CommitStall[cpu.StallHeld] == 0 {
		t.Error("core never recorded held cycles")
	}
	if off.Stats.DelayedCycles != 0 {
		t.Errorf("delayed cycles with termination off = %d", off.Stats.DelayedCycles)
	}
	if offC.Stats.CommitStall[cpu.StallHeld] != 0 {
		t.Error("held cycles recorded with delayed termination off")
	}
}

func TestLaneDivergenceMasking(t *testing.T) {
	// A data-dependent branch inside the loop: about half the lanes take
	// the other path and must be masked off.
	const (
		rZero isa.Reg = 0
		rA    isa.Reg = 1
		rB    isa.Reg = 2
		rI    isa.Reg = 4
		rN    isa.Reg = 5
		rSum  isa.Reg = 6
		rV    isa.Reg = 7
		rMask isa.Reg = 9
		rTh   isa.Reg = 10
	)
	iters := 3000
	tableSize := 1 << 21
	baseA := uint64(0x0100_0000)
	baseB := uint64(0x1000_0000)
	b := isa.NewBuilder("diverge")
	b.Li(rZero, 0)
	b.Li(rA, int64(baseA))
	b.Li(rB, int64(baseB))
	b.Li(rI, 0)
	b.Li(rN, int64(iters))
	b.Li(rSum, 0)
	b.Li(rMask, int64(tableSize-1))
	b.Li(rTh, int64(tableSize/2))
	b.Label("loop")
	b.Ld(rV, rA, rI, 3, 0)
	b.Bge(rV, rTh, "skip") // data-dependent divergence
	b.And(rV, rV, rMask)
	b.Ld(rV, rB, rV, 3, 0)
	b.Add(rSum, rSum, rV)
	b.Label("skip")
	b.AddI(rI, rI, 1)
	b.Blt(rI, rN, "loop")
	b.Halt()
	init := func(d *mem.Backing) {
		s := uint64(777)
		for i := 0; i < iters; i++ {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			d.Store(baseA+uint64(i)*8, s%uint64(tableSize))
		}
		for i := 0; i < tableSize; i += 8 {
			d.Store(baseB+uint64(i)*8, uint64(i))
		}
	}
	k := hashChainKernel{prog: b.MustBuild(), init: init, iters: iters}

	base := runWith(t, k, nil)
	cfg := DefaultVRConfig()
	// Generous hold bound: this test exercises divergence masking, which
	// needs chains to survive past their first gather's data return.
	cfg.MaxHoldCycles = 4096
	vr := NewVR(cfg)
	vrC := runWith(t, k, func(c *cpu.Core) { vr.Bind(c) })
	if base.ArchRegs()[rSum] != vrC.ArchRegs()[rSum] {
		t.Fatalf("divergent kernel corrupted: %d vs %d", base.ArchRegs()[rSum], vrC.ArchRegs()[rSum])
	}
	if vr.Stats.ChainsVectorized == 0 {
		t.Fatal("no vectorization on divergent kernel")
	}
	if vr.Stats.LanesMasked == 0 {
		t.Error("expected masked lanes under divergence")
	}
}

func TestVectorLengthScalesGathers(t *testing.T) {
	perChain := func(vl int) float64 {
		cfg := DefaultVRConfig()
		cfg.VectorLength = vl
		vr := NewVR(cfg)
		runWith(t, buildHashChain(2, 2000, 21), func(c *cpu.Core) { vr.Bind(c) })
		if vr.Stats.ChainsVectorized == 0 {
			t.Fatalf("VL=%d never vectorized", vl)
		}
		return float64(vr.Stats.GatherLoads) / float64(vr.Stats.ChainsVectorized)
	}
	g8, g64 := perChain(8), perChain(64)
	t.Logf("gathers per chain: VL8=%.1f VL64=%.1f", g8, g64)
	// One chain covers VL lanes across its levels: wider vectors must put
	// proportionally more scalar-equivalent loads in flight per episode.
	if g64 < 4*g8 {
		t.Errorf("VL=64 gathers/chain (%.1f) should be ~8x VL=8 (%.1f)", g64, g8)
	}
}

func TestVRTransparencyOnBranchHeavyCode(t *testing.T) {
	// The divergence kernel's correctness is already checked; also verify
	// instruction counts match a plain run (VR must not alter commit).
	k := buildHashChain(1, 2000, 21)
	base := runWith(t, k, nil)
	vr := NewVR(DefaultVRConfig())
	vrC := runWith(t, k, func(c *cpu.Core) { vr.Bind(c) })
	if base.Stats.Committed != vrC.Stats.Committed {
		t.Errorf("committed differs: %d vs %d", base.Stats.Committed, vrC.Stats.Committed)
	}
}

func TestHardwareCost(t *testing.T) {
	vr := NewVR(DefaultVRConfig())
	items := vr.HardwareCost()
	if len(items) == 0 {
		t.Fatal("no cost items")
	}
	total := vr.TotalHardwareBytes()
	if total <= 460 || total > 1139 {
		// Must exceed the bare stride detector and stay below the richer
		// DVR design's published 1139 bytes.
		t.Errorf("total hardware cost = %d bytes", total)
	}
	if items[0].Bytes != 460 {
		t.Errorf("stride detector = %d bytes, want 460", items[0].Bytes)
	}
}

func TestPREDoesNotCorruptState(t *testing.T) {
	k := buildHashChain(2, 2000, 21)
	base := runWith(t, k, nil)
	pre := NewPRE(DefaultPREConfig())
	preC := runWith(t, k, func(c *cpu.Core) { c.AttachEngine(pre) })
	if base.ArchRegs()[6] != preC.ArchRegs()[6] {
		t.Fatalf("PRE corrupted results")
	}
	if pre.Stats.LoadsIssued == 0 {
		t.Error("PRE issued no runahead loads")
	}
}
